// Micro-benchmarks (google-benchmark) for the hot paths of the substrate:
// codec round trips, message encode, scheduler throughput, histogram
// recording, RNG, and relay-group planning.
#include <benchmark/benchmark.h>

#include "common/codec.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "paxos/messages.h"
#include "pigpaxos/messages.h"
#include "pigpaxos/relay_groups.h"
#include "sim/scheduler.h"

namespace pig {
namespace {

void BM_CodecEncodeP2a(benchmark::State& state) {
  paxos::P2a msg;
  msg.ballot = Ballot(7, 3);
  msg.slot = 123456;
  msg.command = Command::Put("key12345", std::string(state.range(0), 'v'),
                             kFirstClientId, 42);
  msg.commit_index = 123455;
  for (auto _ : state) {
    Encoder enc;
    enc.PutU8(static_cast<uint8_t>(msg.type()));
    msg.EncodeBody(enc);
    benchmark::DoNotOptimize(enc.buffer().data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(msg.WireSize()));
}
BENCHMARK(BM_CodecEncodeP2a)->Arg(8)->Arg(128)->Arg(1024);

void BM_CodecRoundTripP2a(benchmark::State& state) {
  paxos::RegisterPaxosMessages();
  paxos::P2a msg;
  msg.ballot = Ballot(7, 3);
  msg.slot = 123456;
  msg.command = Command::Put("key12345", std::string(64, 'v'),
                             kFirstClientId, 42);
  auto wire = EncodeMessage(msg);
  for (auto _ : state) {
    MessagePtr out;
    Status s = DecodeMessage(wire, &out);
    benchmark::DoNotOptimize(s.ok());
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_CodecRoundTripP2a);

void BM_RelayEnvelopeRoundTrip(benchmark::State& state) {
  pigpaxos::RegisterPigPaxosMessages();
  auto inner = std::make_shared<paxos::P2a>();
  inner->ballot = Ballot(7, 3);
  inner->slot = 99;
  inner->command = Command::Put("key", "value", kFirstClientId, 1);
  pigpaxos::RelayRequest req;
  req.relay_id = 12345;
  req.origin = 0;
  for (NodeId n = 1; n <= static_cast<NodeId>(state.range(0)); ++n) {
    req.members.push_back(n);
  }
  req.inner = inner;
  auto wire = EncodeMessage(req);
  for (auto _ : state) {
    MessagePtr out;
    Status s = DecodeMessage(wire, &out);
    benchmark::DoNotOptimize(s.ok());
  }
}
BENCHMARK(BM_RelayEnvelopeRoundTrip)->Arg(4)->Arg(12);

void BM_SchedulerChurn(benchmark::State& state) {
  sim::Scheduler sched;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      sched.ScheduleAfter(i, []() {});
    }
    sched.RunAll();
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_SchedulerChurn);

void BM_HistogramRecord(benchmark::State& state) {
  Histogram h;
  Rng rng(1);
  for (auto _ : state) {
    h.Record(static_cast<TimeNs>(rng.NextBounded(10 * kMillisecond)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

void BM_RngNextBounded(benchmark::State& state) {
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.NextBounded(25));
  }
}
BENCHMARK(BM_RngNextBounded);

void BM_RelayGroupReshuffle(benchmark::State& state) {
  std::vector<NodeId> followers;
  for (NodeId i = 1; i < 25; ++i) followers.push_back(i);
  pigpaxos::RelayGroupPlanner planner(
      followers, pigpaxos::RelayGroupConfig{
                     3, pigpaxos::GroupingStrategy::kContiguous, nullptr});
  Rng rng(3);
  for (auto _ : state) {
    planner.Reshuffle(rng);
    benchmark::DoNotOptimize(planner.groups().size());
  }
}
BENCHMARK(BM_RelayGroupReshuffle);

}  // namespace
}  // namespace pig

BENCHMARK_MAIN();
