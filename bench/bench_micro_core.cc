// Micro-benchmarks (google-benchmark) for the hot paths of the substrate:
// codec round trips, message encode, scheduler throughput, network
// accounting, cluster end-to-end event rate, histogram recording, RNG,
// and relay-group planning.
//
// The subset pinned by scripts/bench_gate.py (scheduler churn/cancel,
// network transfer, fig8-style cluster events) guards against hot-path
// regressions; keep those names and workload shapes stable.
#include <benchmark/benchmark.h>

#include "common/codec.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "harness/experiment.h"
#include "net/network.h"
#include "paxos/messages.h"
#include "pigpaxos/messages.h"
#include "pigpaxos/relay_groups.h"
#include "sim/scheduler.h"

namespace pig {
namespace {

void BM_CodecEncodeP2a(benchmark::State& state) {
  paxos::P2a msg;
  msg.ballot = Ballot(7, 3);
  msg.slot = 123456;
  msg.command = Command::Put("key12345", std::string(state.range(0), 'v'),
                             kFirstClientId, 42);
  msg.commit_index = 123455;
  for (auto _ : state) {
    Encoder enc;
    enc.PutU8(static_cast<uint8_t>(msg.type()));
    msg.EncodeBody(enc);
    benchmark::DoNotOptimize(enc.buffer().data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(msg.WireSize()));
}
BENCHMARK(BM_CodecEncodeP2a)->Arg(8)->Arg(128)->Arg(1024);

void BM_CodecRoundTripP2a(benchmark::State& state) {
  paxos::RegisterPaxosMessages();
  paxos::P2a msg;
  msg.ballot = Ballot(7, 3);
  msg.slot = 123456;
  msg.command = Command::Put("key12345", std::string(64, 'v'),
                             kFirstClientId, 42);
  auto wire = EncodeMessage(msg);
  for (auto _ : state) {
    MessagePtr out;
    Status s = DecodeMessage(wire, &out);
    benchmark::DoNotOptimize(s.ok());
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_CodecRoundTripP2a);

void BM_RelayEnvelopeRoundTrip(benchmark::State& state) {
  pigpaxos::RegisterPigPaxosMessages();
  auto inner = std::make_shared<paxos::P2a>();
  inner->ballot = Ballot(7, 3);
  inner->slot = 99;
  inner->command = Command::Put("key", "value", kFirstClientId, 1);
  pigpaxos::RelayRequest req;
  req.relay_id = 12345;
  req.origin = 0;
  for (NodeId n = 1; n <= static_cast<NodeId>(state.range(0)); ++n) {
    req.members.push_back(n);
  }
  req.inner = inner;
  auto wire = EncodeMessage(req);
  for (auto _ : state) {
    MessagePtr out;
    Status s = DecodeMessage(wire, &out);
    benchmark::DoNotOptimize(s.ok());
  }
}
BENCHMARK(BM_RelayEnvelopeRoundTrip)->Arg(4)->Arg(12);

void BM_SchedulerChurn(benchmark::State& state) {
  sim::Scheduler sched;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      sched.ScheduleAfter(i, []() {});
    }
    sched.RunAll();
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_SchedulerChurn);

// Schedule/run churn while `depth` far-future events sit in the heap —
// the steady state of a busy cluster (every node keeps timers pending).
void BM_SchedulerChurnAtDepth(benchmark::State& state) {
  sim::Scheduler sched;
  const int64_t depth = state.range(0);
  const TimeNs far = TimeNs{1} << 40;  // never reached below
  for (int64_t i = 0; i < depth; ++i) {
    sched.ScheduleAt(far + i, []() {});
  }
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      sched.ScheduleAfter(i, []() {});
    }
    sched.RunFor(64);
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_SchedulerChurnAtDepth)->Arg(256)->Arg(4096);

// Heartbeat/ack-watch pattern: most timers are canceled before firing.
void BM_SchedulerCancelHeavy(benchmark::State& state) {
  sim::Scheduler sched;
  std::vector<sim::EventId> ids;
  ids.reserve(64);
  for (auto _ : state) {
    ids.clear();
    for (int i = 0; i < 64; ++i) {
      ids.push_back(sched.ScheduleAfter(1000 + i, []() {}));
    }
    for (int i = 0; i < 64; ++i) {
      if (i % 8 != 0) sched.Cancel(ids[static_cast<size_t>(i)]);
    }
    sched.RunFor(2000);
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_SchedulerCancelHeavy);

// Per-message fabric bookkeeping: fate decision + both stats sides.
void BM_NetworkTransfer(benchmark::State& state) {
  net::NetworkOptions opt;
  opt.latency = std::make_shared<net::LanLatency>();
  net::Network network(opt);
  NodeId peer = 0;
  for (auto _ : state) {
    NodeId to = 1 + (peer++ % 24);
    auto lat = network.Transfer(0, to, 100);
    benchmark::DoNotOptimize(lat);
    network.RecordDelivery(to, 100);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NetworkTransfer);

// End-to-end simulator event rate on a fig8-style 25-node PigPaxos run
// (3 relay groups, 32 closed-loop clients, 50/50 r/w). items/s =
// simulator events per wall-clock second, the number the bench gate pins.
void BM_ClusterFig8Events(benchmark::State& state) {
  harness::ExperimentConfig cfg;
  cfg.protocol = harness::Protocol::kPigPaxos;
  cfg.num_replicas = 25;
  cfg.relay_groups = 3;
  cfg.num_clients = 32;
  cfg.workload.read_ratio = 0.5;
  cfg.warmup = 100 * kMillisecond;
  cfg.measure = 400 * kMillisecond;
  cfg.seed = 42;
  uint64_t events = 0;
  for (auto _ : state) {
    harness::RunResult r = harness::RunExperiment(cfg);
    events += r.total_events;
    benchmark::DoNotOptimize(r.throughput);
  }
  state.SetItemsProcessed(static_cast<int64_t>(events));
}
BENCHMARK(BM_ClusterFig8Events)->Unit(benchmark::kMillisecond);

void BM_HistogramRecord(benchmark::State& state) {
  Histogram h;
  Rng rng(1);
  for (auto _ : state) {
    h.Record(static_cast<TimeNs>(rng.NextBounded(10 * kMillisecond)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

void BM_RngNextBounded(benchmark::State& state) {
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.NextBounded(25));
  }
}
BENCHMARK(BM_RngNextBounded);

void BM_RelayGroupReshuffle(benchmark::State& state) {
  std::vector<NodeId> followers;
  for (NodeId i = 1; i < 25; ++i) followers.push_back(i);
  pigpaxos::RelayGroupPlanner planner(
      followers, pigpaxos::RelayGroupConfig{
                     3, pigpaxos::GroupingStrategy::kContiguous, nullptr});
  Rng rng(3);
  for (auto _ : state) {
    planner.Reshuffle(rng);
    benchmark::DoNotOptimize(planner.groups().size());
  }
}
BENCHMARK(BM_RelayGroupReshuffle);

}  // namespace
}  // namespace pig

BENCHMARK_MAIN();
