// WAL group-commit bench (durability PR).
//
// The durability design hinges on one claim: a batch window needs ONE
// durability barrier, not one per command — Append() only buffers, and a
// single Sync() (one fdatasync in FileStorage) covers every record
// appended since the previous barrier. This bench appends fig8-shaped
// accept records to a real FileStorage in windows of {1, 16} and issues
// one Sync per window.
//
// items/second shows the group-commit throughput win on a real disk, but
// it is NOT the gated number: fsync latency on shared CI runners swings
// wildly with the backing store. The gate (scripts/bench_gate.py) pins
// the records_per_sync counter instead — appended_records / syncs as
// reported by the storage layer itself, exactly `window` when group
// commit works and ~1 if a regression starts syncing per append. The
// counter is deterministic, so the comparison has no tolerance, and a
// cross-row ratio floor requires window:16 to amortize >= 8 records per
// barrier.
#include <benchmark/benchmark.h>

#include <atomic>
#include <filesystem>
#include <string>

#include "consensus/ballot.h"
#include "statemachine/command.h"
#include "storage/file_storage.h"

namespace pig {
namespace {

namespace fs = std::filesystem;

/// A fresh data directory per benchmark run (repetitions must not replay
/// each other's tails: reopening an existing WAL is a different workload).
fs::path FreshDir() {
  static std::atomic<uint64_t> counter{0};
  fs::path dir = fs::temp_directory_path() /
                 ("pig_bench_wal_" + std::to_string(counter.fetch_add(1)));
  fs::remove_all(dir);
  return dir;
}

void BM_WalGroupFsync(benchmark::State& state) {
  const size_t window = static_cast<size_t>(state.range(0));
  const fs::path dir = FreshDir();
  storage::FileStorage store(dir.string());
  if (!store.ok()) {
    state.SkipWithError(store.open_error().ToString().c_str());
    return;
  }

  // Fig8-shaped payload: 8-byte-ish keys, 16-byte values, one client.
  const Ballot ballot(1, 0);
  SlotId slot = 0;
  for (auto _ : state) {
    for (size_t i = 0; i < window; ++i) {
      Command cmd = Command::Put("key-" + std::to_string(slot % 1024),
                                 "value-payload-16b", kFirstClientId,
                                 static_cast<uint64_t>(slot + 1));
      store.Append(storage::WalRecord::Accept(slot, ballot, cmd));
      ++slot;
    }
    Status s = store.Sync();
    if (!s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      break;
    }
  }

  state.SetItemsProcessed(static_cast<int64_t>(store.appended_records()));
  state.counters["appended"] =
      static_cast<double>(store.appended_records());
  state.counters["syncs"] = static_cast<double>(store.syncs());
  state.counters["records_per_sync"] =
      store.syncs() > 0
          ? static_cast<double>(store.appended_records()) /
                static_cast<double>(store.syncs())
          : 0.0;
  fs::remove_all(dir);
}
BENCHMARK(BM_WalGroupFsync)
    ->ArgName("window")
    ->Arg(1)
    ->Arg(16)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace pig

BENCHMARK_MAIN();
