// Reproduces Fig. 11: latency vs throughput on a 9-node cluster, PigPaxos
// with 2 and 3 relay groups vs Paxos.
//
// Paper result: both PigPaxos configurations beat Paxos on throughput
// (up to ~57% better, §6.2); the 2-group configuration edges out the
// 3-group one; Paxos's latency advantage shrinks vs the 5-node case.
#include <cstdio>

#include "harness/experiment.h"

using namespace pig;
using namespace pig::harness;

int main() {
  std::printf(
      "=== Fig. 11: Latency vs Throughput, 9-node cluster ===\n"
      "Paper: PigPaxos with 2 and 3 relay groups both outscale Paxos; "
      "2 groups best.\n\n");

  const std::vector<size_t> loads = {1, 2, 4, 8, 16, 32, 64, 128, 256, 512};

  {
    ExperimentConfig cfg;
    cfg.protocol = Protocol::kPaxos;
    cfg.num_replicas = 9;
    cfg.seed = 42;
    auto points = LatencyThroughputSweep(cfg, loads);
    std::printf("%s\n", FormatSweep("Paxos", points).c_str());
  }
  for (size_t groups : {2, 3}) {
    ExperimentConfig cfg;
    cfg.protocol = Protocol::kPigPaxos;
    cfg.num_replicas = 9;
    cfg.relay_groups = groups;
    cfg.seed = 42;
    auto points = LatencyThroughputSweep(cfg, loads);
    std::printf("%s\n",
                FormatSweep("PigPaxos " + std::to_string(groups) +
                                " relay groups",
                            points)
                    .c_str());
  }
  return 0;
}
