// Reproduces Fig. 13: throughput over time on a 25-node PigPaxos (3 relay
// groups) while one follower is crashed for a third of the run. Relay
// timeout 50 ms (the paper's setting: >40x the normal-case latency),
// throughput sampled over 1-second windows.
//
// Paper result: the faulty relay group times out, but the two healthy
// groups plus the leader still form a majority; max throughput declines
// only ~3% during the failure window.
#include <cstdio>
#include <numeric>

#include "harness/experiment.h"

using namespace pig;
using namespace pig::harness;

int main() {
  std::printf(
      "=== Fig. 13: throughput under a single-node failure, 25-node "
      "PigPaxos, 3 groups ===\nRelay timeout 50 ms. Node 20 (in the third "
      "relay group) is down from t=20s to t=40s.\n\n");

  ExperimentConfig cfg;
  cfg.protocol = Protocol::kPigPaxos;
  cfg.num_replicas = 25;
  cfg.relay_groups = 3;
  cfg.relay_timeout = 50 * kMillisecond;
  cfg.num_clients = 512;  // saturating load, as in the paper
  cfg.seed = 42;
  cfg.warmup = 2 * kSecond;
  cfg.measure = 58 * kSecond;
  cfg.crash_at = {{20 * kSecond, 20}};
  cfg.recover_at = {{40 * kSecond, 20}};

  RunResult res = RunExperiment(cfg);

  std::printf(" t(s) | throughput (req/s)\n");
  std::printf(" -----+-------------------\n");
  for (size_t s = 2; s < res.timeline.size() && s < 60; ++s) {
    const char* marker = (s >= 20 && s < 40) ? "  <- failure" : "";
    std::printf(" %4zu | %18llu%s\n", s,
                static_cast<unsigned long long>(res.timeline[s]), marker);
  }

  auto avg = [&](size_t from, size_t to) {
    double sum = 0;
    size_t n = 0;
    for (size_t s = from; s < to && s < res.timeline.size(); ++s, ++n) {
      sum += static_cast<double>(res.timeline[s]);
    }
    return n ? sum / static_cast<double>(n) : 0.0;
  };
  const double healthy = (avg(5, 20) + avg(42, 58)) / 2.0;
  const double faulty = avg(21, 40);
  const double delta = (faulty / healthy - 1.0) * 100.0;
  std::printf(
      "\nHealthy-period avg: %.0f req/s; failure-period avg: %.0f req/s "
      "(%+.1f%% change).\nPaper: ~3%% decline — the two healthy relay "
      "groups still deliver the majority, so\nthe impact stays within a "
      "few percent either way (see EXPERIMENTS.md on the sign).\n",
      healthy, faulty, delta);
  return 0;
}
