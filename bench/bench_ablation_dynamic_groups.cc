// Ablation for §4.1 (dynamic relay groups): static groups vs periodic
// random regrouping, in a healthy cluster and with one degraded group.
//
// Expectation: in a healthy cluster regrouping is neutral (relay choice
// is already random within each group); with a crashed follower, the
// failure keeps hitting the same group under static grouping, while
// reshuffling spreads the damage across groups (all groups occasionally
// inherit the dead node, none permanently).
#include <cstdio>

#include "harness/experiment.h"

using namespace pig;
using namespace pig::harness;

int main() {
  std::printf(
      "=== Ablation §4.1: dynamic relay regrouping, 25-node PigPaxos, 3 "
      "groups ===\n\n");
  std::printf(
      " reshuffle | crashed node | tput(req/s) | mean(ms) | p99(ms)\n"
      " ----------+--------------+-------------+----------+--------\n");
  for (bool crash : {false, true}) {
    for (TimeNs interval : {TimeNs{0}, 100 * kMillisecond}) {
      ExperimentConfig cfg;
      cfg.protocol = Protocol::kPigPaxos;
      cfg.num_replicas = 25;
      cfg.relay_groups = 3;
      cfg.reshuffle_interval = interval;
      cfg.num_clients = 128;
      cfg.seed = 42;
      if (crash) cfg.crash_at = {{0, 24}};
      RunResult res = RunExperiment(cfg);
      std::printf(" %-9s | %-12s | %11.1f | %8.3f | %7.3f\n",
                  interval > 0 ? "100 ms" : "static",
                  crash ? "node 24" : "none", res.throughput, res.mean_ms,
                  res.p99_ms);
    }
  }
  return 0;
}
