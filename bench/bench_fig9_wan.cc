// Reproduces Fig. 9: latency vs throughput on a 15-node WAN cluster
// spread over Virginia, California and Oregon; one relay group per region
// and the leader in Virginia.
//
// Paper result: latency is dominated by cross-region RTT, so Paxos and
// PigPaxos are indistinguishable at low load; PigPaxos sustains much
// higher throughput before latency degrades.
#include <cstdio>

#include "harness/experiment.h"

using namespace pig;
using namespace pig::harness;

int main() {
  std::printf(
      "=== Fig. 9: Latency vs Throughput, 15-node WAN cluster "
      "(VA/CA/OR) ===\nPaper: both protocols sit at the WAN latency floor "
      "at low load; Paxos\nsaturates near 2k req/s while PigPaxos keeps "
      "the floor beyond 5k req/s.\n\n");

  const std::vector<size_t> loads = {8, 16, 32, 64, 128, 256, 512, 1024};
  for (Protocol proto : {Protocol::kPaxos, Protocol::kPigPaxos}) {
    ExperimentConfig cfg;
    cfg.protocol = proto;
    cfg.num_replicas = 15;
    cfg.relay_groups = 3;  // one per region (kRegion grouping in harness)
    cfg.topology = Topology::kWanVaCaOr;
    cfg.seed = 42;
    cfg.warmup = 2 * kSecond;
    cfg.measure = 4 * kSecond;
    auto points = LatencyThroughputSweep(cfg, loads);
    std::printf("%s\n", FormatSweep(ProtocolName(proto), points).c_str());
  }
  return 0;
}
