// Reproduces Table 1: message load at leader and followers for different
// relay-group counts in a 25-node cluster — analytical model (§6.1
// formulas 1-3) cross-checked against the simulator's per-node message
// counters.
//
// Paper rows (N=25): r=2: Ml=6, Mf=3.83, 56%; r=3: 8/3.75/113%;
// r=4: 10/3.67/172%; r=5: 12/3.58/234%; r=6: 14/3.50/300%;
// Paxos(r=24): 50/2/2400%.
#include <algorithm>
#include <cstdio>

#include "harness/experiment.h"
#include "model/bottleneck_model.h"

using namespace pig;
using namespace pig::harness;

namespace {

/// Measured (leader, mean-follower) messages per request from a short
/// simulated run with heartbeats/elections quiesced.
std::pair<double, double> MeasuredLoad(Protocol proto, size_t n, size_t r) {
  ExperimentConfig cfg;
  cfg.protocol = proto;
  cfg.num_replicas = n;
  cfg.relay_groups = r;
  cfg.num_clients = 4;  // light load: per-request accounting, no queueing
  cfg.warmup = 500 * kMillisecond;
  cfg.measure = 2 * kSecond;
  cfg.seed = 7;
  RunResult res = RunExperiment(cfg);
  double leader = res.msgs_per_request.empty() ? 0 : res.msgs_per_request[0];
  double followers = 0;
  for (size_t i = 1; i < res.msgs_per_request.size(); ++i) {
    followers += res.msgs_per_request[i];
  }
  followers /= static_cast<double>(n - 1);
  return {leader, followers};
}

}  // namespace

int main() {
  const size_t n = 25;
  std::printf(
      "=== Table 1: message load per request, %zu-node cluster ===\n"
      "model = paper formulas (1)-(3); sim = measured from network "
      "counters\n(sim includes heartbeats/log-sync, so slightly above "
      "model)\n\n",
      n);
  std::printf(
      " groups |  Ml model |  Ml sim |  Mf model |  Mf sim | overhead "
      "model | overhead sim\n"
      " -------+-----------+---------+-----------+---------+---------------"
      "+-------------\n");

  auto rows = model::MessageLoadTable(n, {2, 3, 4, 5, 6});
  for (const auto& row : rows) {
    const bool is_paxos = row.relay_groups == n - 1;
    auto [ml_sim, mf_sim] =
        MeasuredLoad(is_paxos ? Protocol::kPaxos : Protocol::kPigPaxos, n,
                     row.relay_groups);
    double overhead_sim = (ml_sim / std::max(mf_sim, 1e-9) - 1.0) * 100.0;
    std::printf(
        " %6s | %9.2f | %7.2f | %9.2f | %7.2f | %12.0f%% | %11.0f%%\n",
        row.label.c_str(), row.load.leader, ml_sim, row.load.follower,
        mf_sim, row.load.LeaderOverheadPercent(), overhead_sim);
  }
  std::printf(
      "\nPaper Table 1:  r=2: 6/3.83/56%%  r=3: 8/3.75/113%%  r=4: "
      "10/3.67/172%%\n                r=5: 12/3.58/234%%  r=6: 14/3.50/300%%"
      "  Paxos: 50/2/2400%%\n");
  return 0;
}
