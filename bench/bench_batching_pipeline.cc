// Leader/relay command batching + commit pipelining, fig8-shaped.
//
// Runs the 25-node PigPaxos configuration of Fig. 8 at saturating load
// with the batching engine swept over {batch_size x pipeline_depth} (and
// relay uplink coalescing following the batch setting), plus a Paxos
// 5-node control. items/s is committed client commands per wall second;
// the sim_req_s counter reports throughput in *virtual* time, which is
// the paper-comparable number (batch=8/depth=8 must beat batch=1/depth=1
// by >= 1.3x; the bench gate pins both configurations).
#include <benchmark/benchmark.h>

#include "harness/experiment.h"

namespace pig {
namespace {

harness::ExperimentConfig BaseConfig(harness::Protocol proto,
                                     size_t num_replicas,
                                     size_t batch, size_t depth) {
  harness::ExperimentConfig cfg;
  cfg.protocol = proto;
  cfg.num_replicas = num_replicas;
  cfg.relay_groups = 3;
  cfg.num_clients = 128;
  cfg.workload.read_ratio = 0.5;
  cfg.warmup = 100 * kMillisecond;
  cfg.measure = 400 * kMillisecond;
  cfg.seed = 42;
  cfg.batch_size = batch;
  cfg.pipeline_depth = depth;
  // Relay uplink coalescing rides along with batching: pipelined slots
  // are what give a relay several finished rounds to bundle.
  cfg.uplink_coalesce_max = batch > 1 ? 4 : 1;
  return cfg;
}

void ReportRun(benchmark::State& state, const harness::RunResult& r,
               uint64_t completed) {
  state.SetItemsProcessed(static_cast<int64_t>(completed));
  state.counters["sim_req_s"] = r.throughput;
  state.counters["mean_batch"] = r.mean_batch_size;
  state.counters["p99_ms"] = r.p99_ms;
  state.counters["uplink_bundles"] = static_cast<double>(r.uplink_bundles);
}

void BM_BatchPipelineFig8(benchmark::State& state) {
  auto cfg = BaseConfig(harness::Protocol::kPigPaxos, 25,
                        static_cast<size_t>(state.range(0)),
                        static_cast<size_t>(state.range(1)));
  uint64_t completed = 0;
  harness::RunResult r;
  for (auto _ : state) {
    r = harness::RunExperiment(cfg);
    completed += r.completed;
  }
  ReportRun(state, r, completed);
}
BENCHMARK(BM_BatchPipelineFig8)
    ->Args({1, 1})
    ->Args({4, 4})
    ->Args({8, 8})
    ->Args({8, 16})
    ->Unit(benchmark::kMillisecond);

void BM_BatchPipelinePaxos5(benchmark::State& state) {
  auto cfg = BaseConfig(harness::Protocol::kPaxos, 5,
                        static_cast<size_t>(state.range(0)),
                        static_cast<size_t>(state.range(1)));
  uint64_t completed = 0;
  harness::RunResult r;
  for (auto _ : state) {
    r = harness::RunExperiment(cfg);
    completed += r.completed;
  }
  ReportRun(state, r, completed);
}
BENCHMARK(BM_BatchPipelinePaxos5)
    ->Args({1, 1})
    ->Args({8, 8})
    ->Unit(benchmark::kMillisecond);

// Uplink-coalescing ablation: batching fixed at 8/8, bundle size swept.
void BM_UplinkCoalesce(benchmark::State& state) {
  auto cfg = BaseConfig(harness::Protocol::kPigPaxos, 25, 8, 8);
  cfg.uplink_coalesce_max = static_cast<size_t>(state.range(0));
  uint64_t completed = 0;
  harness::RunResult r;
  for (auto _ : state) {
    r = harness::RunExperiment(cfg);
    completed += r.completed;
  }
  ReportRun(state, r, completed);
}
BENCHMARK(BM_UplinkCoalesce)->Arg(1)->Arg(4)->Arg(8)->Unit(
    benchmark::kMillisecond);

}  // namespace
}  // namespace pig

BENCHMARK_MAIN();
