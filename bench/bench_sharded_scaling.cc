// Multi-group keyspace sharding, fig8-shaped (ROADMAP scale-out item).
//
// One PigPaxos leader caps total throughput no matter how good the relay
// tree is; sharding the keyspace across independent consensus groups
// (one replica per group per node, leaders spread across nodes) is the
// way past that. This bench sweeps groups in {1, 4, 16} on the 25-node
// fig8-shape cluster under identical seeds and workload; the sim_req_s
// counter (virtual-time throughput, fully deterministic per seed) is the
// gated number — the bench gate requires groups:4 >= 3x groups:1 and
// pins every row against bench_baseline.json. Clients are scaled with
// load capacity: a single closed-loop fleet would saturate at one
// group's ceiling and hide the scaling.
#include <benchmark/benchmark.h>

#include "harness/experiment.h"

namespace pig {
namespace {

harness::ExperimentConfig ShardedConfig(size_t num_groups) {
  harness::ExperimentConfig cfg;
  cfg.protocol = harness::Protocol::kPigPaxos;
  cfg.num_replicas = 25;
  cfg.relay_groups = 3;
  cfg.num_groups = num_groups;
  // Enough closed-loop clients to saturate 16 groups; identical offered
  // load across rows so the sweep isolates the group count.
  cfg.num_clients = 2048;
  cfg.workload.read_ratio = 0.5;
  // Production posture from PR 3: leader batching + commit pipelining +
  // relay uplink coalescing. Amortizing the per-slot fan-out is also
  // what keeps follower-side replication work (paid by every node for
  // every group) from eating the multi-leader win.
  cfg.batch_size = 16;
  cfg.pipeline_depth = 8;
  cfg.uplink_coalesce_max = 8;
  cfg.warmup = 100 * kMillisecond;
  cfg.measure = 400 * kMillisecond;
  cfg.seed = 42;
  return cfg;
}

void BM_ShardedFig8Shape(benchmark::State& state) {
  auto cfg = ShardedConfig(static_cast<size_t>(state.range(0)));
  uint64_t completed = 0;
  harness::RunResult r;
  for (auto _ : state) {
    r = harness::RunExperiment(cfg);
    completed += r.completed;
  }
  state.SetItemsProcessed(static_cast<int64_t>(completed));
  state.counters["sim_req_s"] = r.throughput;
  state.counters["p99_ms"] = r.p99_ms;
  state.counters["timeouts"] = static_cast<double>(r.timeouts);
  // Group balance: min/max in-window completions across groups. A badly
  // skewed hash would show up here long before it sinks the ratio gate.
  uint64_t min_g = ~0ull, max_g = 0;
  for (uint64_t c : r.per_group_completed) {
    min_g = std::min(min_g, c);
    max_g = std::max(max_g, c);
  }
  state.counters["group_min"] = static_cast<double>(min_g);
  state.counters["group_max"] = static_cast<double>(max_g);
}
BENCHMARK(BM_ShardedFig8Shape)
    ->ArgName("groups")
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pig

BENCHMARK_MAIN();
