// Ablation for §2.2 (flexible quorums): classic majority vs FPaxos-style
// small phase-2 quorums, under Paxos and PigPaxos.
//
// Paper's argument: a small Q2 cuts commit *latency* tails but does NOT
// clear the leader bottleneck — the leader still exchanges messages with
// every follower, so throughput barely moves. Combining flexible quorums
// WITH PigPaxos keeps the relay savings.
#include <cstdio>

#include "harness/experiment.h"

using namespace pig;
using namespace pig::harness;

int main() {
  std::printf(
      "=== Ablation §2.2: flexible quorums (N=10, Q1=8, Q2=3 like the "
      "paper's example) ===\n\n");
  std::printf(
      " protocol  | quorum    | max tput(req/s) | mean(ms) @16 clients\n"
      " ----------+-----------+-----------------+---------------------\n");
  for (Protocol proto : {Protocol::kPaxos, Protocol::kPigPaxos}) {
    for (bool flexible : {false, true}) {
      ExperimentConfig cfg;
      cfg.protocol = proto;
      cfg.num_replicas = 10;
      cfg.relay_groups = 2;
      cfg.seed = 42;
      if (flexible) {
        cfg.flexible_q1 = 8;
        cfg.flexible_q2 = 3;
      }
      cfg.num_clients = 512;
      RunResult sat = RunExperiment(cfg);
      cfg.num_clients = 16;
      RunResult mid = RunExperiment(cfg);
      std::printf(" %-9s | %-9s | %15.1f | %20.3f\n",
                  ProtocolName(proto).c_str(),
                  flexible ? "fpaxos8/3" : "majority", sat.throughput,
                  mid.mean_ms);
    }
  }
  std::printf(
      "\nPaper §2.2: flexible quorums do not reduce the leader bottleneck "
      "(all\nfollowers still answer); PigPaxos does, and the two "
      "compose.\n");
  return 0;
}
