// Reproduces Table 2: message load at leader and followers for 2..4 relay
// groups in a 9-node cluster, plus the Paxos row — analytical model vs
// simulator counters.
//
// Paper rows (N=9): r=2: Ml=6, Mf=3.5, 71%; r=3: 8/3.25/146%;
// r=4: 10/3/233%; Paxos(r=8): 18/2/800%.
#include <algorithm>
#include <cstdio>

#include "harness/experiment.h"
#include "model/bottleneck_model.h"

using namespace pig;
using namespace pig::harness;

int main() {
  const size_t n = 9;
  std::printf(
      "=== Table 2: message load per request, %zu-node cluster ===\n\n", n);
  std::printf(
      " groups |  Ml model |  Ml sim |  Mf model |  Mf sim | overhead "
      "model | overhead sim\n"
      " -------+-----------+---------+-----------+---------+---------------"
      "+-------------\n");
  auto rows = model::MessageLoadTable(n, {2, 3, 4});
  for (const auto& row : rows) {
    const bool is_paxos = row.relay_groups == n - 1;
    ExperimentConfig cfg;
    cfg.protocol = is_paxos ? Protocol::kPaxos : Protocol::kPigPaxos;
    cfg.num_replicas = n;
    cfg.relay_groups = row.relay_groups;
    cfg.num_clients = 4;
    cfg.warmup = 500 * kMillisecond;
    cfg.measure = 2 * kSecond;
    cfg.seed = 7;
    RunResult res = RunExperiment(cfg);
    double ml_sim = res.msgs_per_request[0];
    double mf_sim = 0;
    for (size_t i = 1; i < n; ++i) mf_sim += res.msgs_per_request[i];
    mf_sim /= static_cast<double>(n - 1);
    std::printf(
        " %6s | %9.2f | %7.2f | %9.2f | %7.2f | %12.0f%% | %11.0f%%\n",
        row.label.c_str(), row.load.leader, ml_sim, row.load.follower,
        mf_sim, row.load.LeaderOverheadPercent(),
        (ml_sim / std::max(mf_sim, 1e-9) - 1.0) * 100.0);
  }
  std::printf(
      "\nPaper Table 2:  r=2: 6/3.5/71%%  r=3: 8/3.25/146%%  r=4: "
      "10/3/233%%  Paxos: 18/2/800%%\n");
  return 0;
}
